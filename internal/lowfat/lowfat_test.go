package lowfat

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newAlloc(t *testing.T, opts Options) *Allocator {
	t.Helper()
	return New(mem.New(), opts)
}

func TestSizeBaseArithmetic(t *testing.T) {
	a := newAlloc(t, Options{})
	p, err := a.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if got := Size(p); got != 32 {
		t.Fatalf("Size = %d, want 32", got)
	}
	if got := Base(p); got != p {
		t.Fatalf("Base of allocation base = %#x, want %#x", got, p)
	}
	// Interior pointers resolve to the same base — the paper's
	// size(str+10)==32, base(str+10)==str example.
	for _, off := range []uint64{1, 10, 31} {
		if got := Size(p + off); got != 32 {
			t.Fatalf("Size(p+%d) = %d, want 32", off, got)
		}
		if got := Base(p + off); got != p {
			t.Fatalf("Base(p+%d) = %#x, want %#x", off, got, p)
		}
	}
}

func TestSizeClassRounding(t *testing.T) {
	a := newAlloc(t, Options{})
	for _, c := range []struct{ req, slot uint64 }{
		{1, 16}, {16, 16}, {17, 32}, {100, 112}, {4096, 4096},
		{5000, 5120}, {9000, 10240},
	} {
		p, err := a.Alloc(c.req)
		if err != nil {
			t.Fatal(err)
		}
		if got := Size(p); got != c.slot {
			t.Errorf("Alloc(%d): slot %d, want %d", c.req, got, c.slot)
		}
		if p%c.slot != 0 {
			t.Errorf("Alloc(%d): %#x not aligned to slot %d", c.req, p, c.slot)
		}
	}
}

func TestLegacyPointers(t *testing.T) {
	a := newAlloc(t, Options{})
	p := a.LegacyAlloc(64)
	if IsLowFat(p) {
		t.Fatal("legacy pointer must not be low-fat")
	}
	if Size(p) != SizeMax {
		t.Fatalf("Size(legacy) = %d, want SizeMax", Size(p))
	}
	if Base(p) != 0 {
		t.Fatalf("Base(legacy) = %#x, want 0", Base(p))
	}
	// Null and small addresses are legacy too.
	if IsLowFat(0) || IsLowFat(4096) {
		t.Fatal("null-page pointers must be legacy")
	}
}

func TestAllocZeroes(t *testing.T) {
	a := newAlloc(t, Options{})
	p, _ := a.Alloc(64)
	a.Mem().Store(p, 8, 0xffffffffffffffff)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := a.Alloc(64)
	if q != p {
		t.Fatalf("free list must recycle: got %#x, want %#x", q, p)
	}
	if got := a.Mem().Load(q, 8); got != 0 {
		t.Fatalf("recycled slot not zeroed: %#x", got)
	}
}

func TestFreeValidation(t *testing.T) {
	a := newAlloc(t, Options{})
	p, _ := a.Alloc(64)
	if err := a.Free(p + 8); err == nil {
		t.Fatal("interior free must fail")
	}
	if err := a.Free(LegacyBase + 100); err == nil {
		t.Fatal("legacy free must fail")
	}
	if err := a.Free(p + Size(p)); err == nil {
		t.Fatal("free of never-allocated slot must fail")
	}
	if got := a.Stats().BadFrees; got != 3 {
		t.Fatalf("BadFrees = %d, want 3", got)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineDelaysReuse(t *testing.T) {
	a := newAlloc(t, Options{Quarantine: 1 << 20})
	p, _ := a.Alloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := a.Alloc(64)
	if q == p {
		t.Fatal("quarantine must delay slot reuse")
	}
	if a.Stats().Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", a.Stats().Quarantined)
	}
}

func TestQuarantineEviction(t *testing.T) {
	// A tiny quarantine must still release slots back eventually.
	a := newAlloc(t, Options{Quarantine: 64})
	p1, _ := a.Alloc(64)
	p2, _ := a.Alloc(64)
	a.Free(p1)
	a.Free(p2) // pushes quarantine over budget; p1 released
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		q, _ := a.Alloc(64)
		seen[q] = true
	}
	if !seen[p1] {
		t.Fatal("evicted slot must be reusable")
	}
}

func TestStatsPeak(t *testing.T) {
	a := newAlloc(t, Options{})
	p1, _ := a.Alloc(1024)
	p2, _ := a.Alloc(1024)
	a.Free(p1)
	a.Free(p2)
	s := a.Stats()
	if s.Live != 0 {
		t.Fatalf("Live = %d, want 0", s.Live)
	}
	if s.Peak != 2048 {
		t.Fatalf("Peak = %d, want 2048", s.Peak)
	}
	if s.Allocs != 2 || s.Frees != 2 {
		t.Fatalf("Allocs/Frees = %d/%d, want 2/2", s.Allocs, s.Frees)
	}
}

func TestOversizeAllocation(t *testing.T) {
	a := newAlloc(t, Options{})
	if _, err := a.Alloc(2 << 30); err == nil {
		t.Fatal("allocation beyond the largest class must fail")
	}
}

// Property: for any allocation, every interior pointer's Base/Size
// round-trips to the allocation itself, and distinct live allocations
// never share a slot.
func TestBaseSizeProperty(t *testing.T) {
	a := newAlloc(t, Options{})
	live := map[uint64]uint64{} // base -> slot
	check := func(req uint16, offs uint8) bool {
		size := uint64(req)%5000 + 1
		p, err := a.Alloc(size)
		if err != nil {
			return false
		}
		slot := Size(p)
		if slot < size || p%slot != 0 {
			return false
		}
		for prev, pslot := range live {
			if p < prev+pslot && prev < p+slot {
				return false // overlap
			}
		}
		live[p] = slot
		off := uint64(offs) % slot
		return Base(p+off) == p && Size(p+off) == slot
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := newAlloc(t, Options{})
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			var ptrs []uint64
			for i := 0; i < 200; i++ {
				p, err := a.Alloc(uint64(16 + i%512))
				if err != nil {
					t.Error(err)
					break
				}
				ptrs = append(ptrs, p)
			}
			for _, p := range ptrs {
				if err := a.Free(p); err != nil {
					t.Error(err)
				}
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s := a.Stats(); s.Live != 0 {
		t.Fatalf("Live = %d after all frees", s.Live)
	}
}
