package lowfat

import (
	"testing"

	"repro/internal/mem"
)

// TestCanaryAtSizeClassEdges walks every size class (mirroring
// TestClassForBoundaries' edge discipline) and checks CanarySpan against
// a linear oracle — min(slot-usable, CanaryMax), zero for a full slot —
// then exercises the full write/clobber/heal cycle on a real allocation
// at each edge. Classes above 1 MiB are skipped only to bound the
// memory the test materialises; the span arithmetic is class-agnostic.
func TestCanaryAtSizeClassEdges(t *testing.T) {
	m := mem.New()
	a := New(m, Options{})
	oracleSpan := func(slot, usable uint64) uint64 {
		if usable >= slot {
			return 0
		}
		pad := slot - usable
		if pad > CanaryMax {
			pad = CanaryMax
		}
		return pad
	}
	for c := 0; c < NumClasses; c++ {
		slot := classSize(c)
		if slot > 1<<20 {
			break
		}
		// usable = header+request edges: exactly-full slot, one byte of
		// slack, a span larger than CanaryMax, and a minimal object.
		for _, usable := range []uint64{slot, slot - 1, slot / 2, 1} {
			if usable == 0 || usable > slot {
				continue
			}
			base, err := a.Alloc(slot) // exact class-size request lands in class c
			if err != nil {
				t.Fatalf("class %d: %v", c, err)
			}
			if got := Size(base); got != slot {
				t.Fatalf("class %d: Size(base) = %d, want %d", c, got, slot)
			}
			want := oracleSpan(slot, usable)
			if got := CanarySpan(base, usable); got != want {
				t.Errorf("class %d: CanarySpan(slot %d, usable %d) = %d, oracle %d",
					c, slot, usable, got, want)
			}
			WriteCanary(m, base, usable)
			if !CheckCanary(m, base, usable) {
				t.Errorf("class %d usable %d: fresh canary not intact", c, usable)
			}
			if want > 0 {
				// Clobber the LAST canary byte (the far edge of the span),
				// then heal it with a re-assertion.
				m.Set(base+usable+want-1, 0xAA, 1)
				if CheckCanary(m, base, usable) {
					t.Errorf("class %d usable %d: clobbered canary passed", c, usable)
				}
				WriteCanary(m, base, usable)
				if !CheckCanary(m, base, usable) {
					t.Errorf("class %d usable %d: healed canary still torn", c, usable)
				}
				// A write just past the span is out of the inspected
				// window by design (CanaryMax caps the per-free cost).
				if want == CanaryMax && slot-usable > CanaryMax {
					m.Set(base+usable+want, 0xBB, 1)
					if !CheckCanary(m, base, usable) {
						t.Errorf("class %d usable %d: byte beyond CanaryMax tripped the canary", c, usable)
					}
					m.Set(base+usable+want, 0, 1)
				}
			}
			if err := a.Free(base); err != nil {
				t.Fatalf("class %d: free: %v", c, err)
			}
		}
	}
}

// TestCanaryLegacyAndDegenerate pins the non-low-fat cases: legacy
// pointers (Size == SizeMax) and usable >= slot have no canary span, and
// Write/Check are no-ops that always pass.
func TestCanaryLegacyAndDegenerate(t *testing.T) {
	m := mem.New()
	legacy := LegacyBase + 4096 // outside every size-class region
	if got := CanarySpan(legacy, 8); got != 0 {
		t.Errorf("legacy CanarySpan = %d, want 0", got)
	}
	WriteCanary(m, legacy, 8)
	if !CheckCanary(m, legacy, 8) {
		t.Error("legacy CheckCanary = false, want true")
	}
	a := New(m, Options{})
	base, err := a.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if got := CanarySpan(base, Size(base)+1); got != 0 {
		t.Errorf("over-full CanarySpan = %d, want 0", got)
	}
	if !CheckCanary(m, base, Size(base)) {
		t.Error("exactly-full slot must trivially pass")
	}
}
