// Package lowfat implements low-fat pointers (Duck & Yap, CC'16; Duck,
// Yap & Cavallaro, NDSS'17): a memory allocator whose pointers encode the
// bounds of their allocation in the pointer value itself.
//
// The address space is partitioned into equally sized regions, one per
// allocation size class; every object in region i is exactly Classes[i]
// bytes and is aligned to its own size. Consequently, for any pointer p
// into a low-fat object:
//
//	Size(p) = Classes[p/RegionSize - 1]
//	Base(p) = p - p%Size(p)
//
// both O(1) and requiring no metadata loads — the property EffectiveSan
// repurposes to attach an object metadata header at Base(p) (§5).
//
// Pointers outside the low-fat regions are "legacy" pointers (from
// uninstrumented code or custom memory allocators): Size returns SizeMax
// and Base returns 0, and the EffectiveSan runtime treats them with wide
// bounds for compatibility. LegacyAlloc carves objects from such a region
// to model CMAs and uninstrumented libraries.
package lowfat

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mem"
)

// RegionSize is the virtual address span of one size-class region (4 GiB,
// as in the NDSS'17 layout).
const RegionSize = 1 << 32

// MaxAllocSize is the largest slot size (1 GiB).
const MaxAllocSize = 1 << 30

// classSizes holds the allocation size classes, ascending. Like the real
// low-fat allocator's table, classes are fine-grained — every multiple of
// 16 up to 4 KiB, then four classes per octave — so the per-object waste
// (and the cost of EffectiveSan's 16-byte metadata header) stays small.
// All classes are multiples of 16, preserving malloc alignment.
var classSizes = buildClassSizes()

func buildClassSizes() []uint64 {
	var sizes []uint64
	for s := uint64(16); s <= 4096; s += 16 {
		sizes = append(sizes, s)
	}
	for e := uint64(0); ; e++ {
		done := false
		for _, m := range []uint64{5120, 6144, 7168, 8192} {
			s := m << e
			if s > MaxAllocSize {
				done = true
				break
			}
			sizes = append(sizes, s)
		}
		if done {
			break
		}
	}
	return sizes
}

// NumClasses is the number of allocation size classes.
var NumClasses = len(classSizes)

// SizeMax is the Size of a legacy (non-low-fat) pointer.
const SizeMax = math.MaxUint64

// LegacyBase is the start of the legacy (non-low-fat) allocation region.
var LegacyBase = uint64(NumClasses+1) * RegionSize

// classSize returns the slot size of class c.
func classSize(c int) uint64 { return classSizes[c] }

// classFor returns the smallest size class fitting size bytes, or -1.
func classFor(size uint64) int {
	if size <= 4096 {
		return int((size+15)/16*16/16) - 1
	}
	lo, hi := 256, len(classSizes)
	for lo < hi {
		mid := (lo + hi) / 2
		if classSizes[mid] >= size {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(classSizes) {
		return -1
	}
	return lo
}

// Size returns the allocation size encoded in pointer p: the size class
// of the region p points into, or SizeMax for legacy pointers. It is a
// pure function of the pointer value (plus the constant class table) —
// the essence of low-fat pointers.
func Size(p uint64) uint64 {
	idx := p / RegionSize
	if idx >= 1 && idx <= uint64(NumClasses) {
		return classSizes[idx-1]
	}
	return SizeMax
}

// Base returns the base address of the allocation containing p, or 0 for
// legacy pointers. Slots are placed at absolute multiples of their size,
// so rounding down is exact.
func Base(p uint64) uint64 {
	idx := p / RegionSize
	if idx >= 1 && idx <= uint64(NumClasses) {
		size := classSizes[idx-1]
		return p - p%size
	}
	return 0
}

// IsLowFat reports whether p points into a low-fat region.
func IsLowFat(p uint64) bool {
	idx := p / RegionSize
	return idx >= 1 && idx <= uint64(NumClasses)
}

// Options configure an Allocator.
type Options struct {
	// Quarantine delays the reuse of freed slots by holding up to this
	// many bytes per size class in a FIFO before they return to the free
	// list (AddressSanitizer-style; "a technique also applicable to
	// EffectiveSan", §2.1). Zero disables quarantine.
	Quarantine uint64
}

// Stats reports allocator activity. Live and Peak count slot bytes (the
// allocator's own fragmentation included), the simulation's analogue of
// heap RSS.
type Stats struct {
	Allocs      uint64
	Frees       uint64
	Live        uint64
	Peak        uint64
	LegacyLive  uint64
	BadFrees    uint64
	Quarantined uint64
}

// Allocator is a low-fat heap allocator over a simulated memory. It is
// safe for concurrent use.
type Allocator struct {
	mem  *mem.Memory
	opts Options

	mu         sync.Mutex
	bump       []uint64 // next never-used slot offset per class
	freeLists  [][]uint64
	quarantine [][]uint64
	quarBytes  uint64
	legacyBump uint64
	stats      Stats
}

// New returns an allocator over m.
func New(m *mem.Memory, opts Options) *Allocator {
	return &Allocator{
		mem:        m,
		opts:       opts,
		bump:       make([]uint64, NumClasses),
		freeLists:  make([][]uint64, NumClasses),
		quarantine: make([][]uint64, NumClasses),
	}
}

// Mem returns the underlying memory.
func (a *Allocator) Mem() *mem.Memory { return a.mem }

// Stats returns a snapshot of allocator statistics.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Alloc returns a pointer to a fresh allocation of at least size bytes,
// placed in the matching size-class region and aligned to its slot size.
// The returned memory is zeroed (fresh pages read as zero; recycled slots
// are cleared here). Alloc fails only for sizes beyond the largest class.
func (a *Allocator) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	c := classFor(size)
	if c < 0 {
		return 0, fmt.Errorf("lowfat: allocation of %d bytes exceeds the largest size class", size)
	}
	slot := classSize(c)

	a.mu.Lock()
	var p uint64
	if n := len(a.freeLists[c]); n > 0 {
		p = a.freeLists[c][n-1]
		a.freeLists[c] = a.freeLists[c][:n-1]
	} else {
		regionBase := uint64(c+1) * RegionSize
		// Slots sit at absolute multiples of their size so that Base can
		// recover them by rounding; the first slot of a region is the
		// first such multiple at or after the region base.
		align := (slot - regionBase%slot) % slot
		if align+a.bump[c]+slot > RegionSize {
			a.mu.Unlock()
			return 0, fmt.Errorf("lowfat: size class %d (slot %d) exhausted", c, slot)
		}
		p = regionBase + align + a.bump[c]
		a.bump[c] += slot
	}
	a.stats.Allocs++
	a.stats.Live += slot
	if a.stats.Live > a.stats.Peak {
		a.stats.Peak = a.stats.Live
	}
	a.mu.Unlock()

	a.mem.Set(p, 0, slot)
	return p, nil
}

// Free returns the allocation with base pointer p to its size class. p
// must be the value previously returned by Alloc (the slot base); other
// values are rejected and counted in Stats.BadFrees.
func (a *Allocator) Free(p uint64) error {
	if !IsLowFat(p) || Base(p) != p {
		a.mu.Lock()
		a.stats.BadFrees++
		a.mu.Unlock()
		return fmt.Errorf("lowfat: free of non-allocation pointer %#x", p)
	}
	c := int(p/RegionSize) - 1
	slot := classSize(c)
	regionBase := uint64(c+1) * RegionSize
	align := (slot - regionBase%slot) % slot

	a.mu.Lock()
	defer a.mu.Unlock()
	if p >= regionBase+align+a.bump[c] {
		a.stats.BadFrees++
		return fmt.Errorf("lowfat: free of never-allocated pointer %#x", p)
	}
	a.stats.Frees++
	a.stats.Live -= slot
	if a.opts.Quarantine > 0 {
		a.quarantine[c] = append(a.quarantine[c], p)
		a.quarBytes += slot
		a.stats.Quarantined++
		for a.quarBytes > a.opts.Quarantine {
			// Release the oldest quarantined slot of the largest backlog.
			released := false
			for qc := range a.quarantine {
				if len(a.quarantine[qc]) == 0 {
					continue
				}
				q := a.quarantine[qc][0]
				a.quarantine[qc] = a.quarantine[qc][1:]
				a.freeLists[qc] = append(a.freeLists[qc], q)
				a.quarBytes -= classSize(qc)
				released = true
				break
			}
			if !released {
				break
			}
		}
		return nil
	}
	a.freeLists[c] = append(a.freeLists[c], p)
	return nil
}

// LegacyAlloc carves size bytes from the legacy region. Pointers it
// returns are not low-fat: Size reports SizeMax and Base reports 0. It
// models custom memory allocators and uninstrumented libraries (§6's
// CMA discussion), whose objects EffectiveSan cannot type.
func (a *Allocator) LegacyAlloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	const align = 16
	size = (size + align - 1) / align * align
	a.mu.Lock()
	p := LegacyBase + a.legacyBump
	a.legacyBump += size
	a.stats.LegacyLive += size
	a.mu.Unlock()
	return p
}
