// Package lowfat implements low-fat pointers (Duck & Yap, CC'16; Duck,
// Yap & Cavallaro, NDSS'17): a memory allocator whose pointers encode the
// bounds of their allocation in the pointer value itself.
//
// The address space is partitioned into equally sized regions, one per
// allocation size class; every object in region i is exactly Classes[i]
// bytes and is aligned to its own size. Consequently, for any pointer p
// into a low-fat object:
//
//	Size(p) = Classes[p/RegionSize - 1]
//	Base(p) = p - p%Size(p)
//
// both O(1) and requiring no metadata loads — the property EffectiveSan
// repurposes to attach an object metadata header at Base(p) (§5).
//
// Pointers outside the low-fat regions are "legacy" pointers (from
// uninstrumented code or custom memory allocators): Size returns SizeMax
// and Base returns 0, and the EffectiveSan runtime treats them with wide
// bounds for compatibility. LegacyAlloc carves objects from such a region
// to model CMAs and uninstrumented libraries.
//
// The heap is split in two layers. Allocator is the central store: bump
// cursors, global free lists, the quarantine FIFO and the canonical
// Stats. Magazine (see magazine.go) is a per-worker cache of slots that
// refills from and flushes to the central store in amortized batches, so
// a worker's steady-state Alloc/Free takes no shared lock — the central
// mutex is acquired once per batch, not once per operation.
package lowfat

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
)

// RegionSize is the virtual address span of one size-class region (4 GiB,
// as in the NDSS'17 layout).
const RegionSize = 1 << 32

// MaxAllocSize is the largest slot size (1 GiB).
const MaxAllocSize = 1 << 30

// classSizes holds the allocation size classes, ascending. Like the real
// low-fat allocator's table, classes are fine-grained — every multiple of
// 16 up to 4 KiB, then four classes per octave — so the per-object waste
// (and the cost of EffectiveSan's 16-byte metadata header) stays small.
// All classes are multiples of 16, preserving malloc alignment.
var classSizes = buildClassSizes()

func buildClassSizes() []uint64 {
	var sizes []uint64
	for s := uint64(16); s <= 4096; s += 16 {
		sizes = append(sizes, s)
	}
	for e := uint64(0); ; e++ {
		done := false
		for _, m := range []uint64{5120, 6144, 7168, 8192} {
			s := m << e
			if s > MaxAllocSize {
				done = true
				break
			}
			sizes = append(sizes, s)
		}
		if done {
			break
		}
	}
	return sizes
}

// NumClasses is the number of allocation size classes.
var NumClasses = len(classSizes)

// SizeMax is the Size of a legacy (non-low-fat) pointer.
const SizeMax = math.MaxUint64

// LegacyBase is the start of the legacy (non-low-fat) allocation region.
var LegacyBase = uint64(NumClasses+1) * RegionSize

// classSize returns the slot size of class c.
func classSize(c int) uint64 { return classSizes[c] }

// classFor returns the smallest size class fitting size bytes, or -1.
func classFor(size uint64) int {
	if size <= 4096 {
		return int((size+15)/16*16/16) - 1
	}
	lo, hi := 256, len(classSizes)
	for lo < hi {
		mid := (lo + hi) / 2
		if classSizes[mid] >= size {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(classSizes) {
		return -1
	}
	return lo
}

// Size returns the allocation size encoded in pointer p: the size class
// of the region p points into, or SizeMax for legacy pointers. It is a
// pure function of the pointer value (plus the constant class table) —
// the essence of low-fat pointers.
func Size(p uint64) uint64 {
	idx := p / RegionSize
	if idx >= 1 && idx <= uint64(NumClasses) {
		return classSizes[idx-1]
	}
	return SizeMax
}

// Base returns the base address of the allocation containing p, or 0 for
// legacy pointers. Slots are placed at absolute multiples of their size,
// so rounding down is exact.
func Base(p uint64) uint64 {
	idx := p / RegionSize
	if idx >= 1 && idx <= uint64(NumClasses) {
		size := classSizes[idx-1]
		return p - p%size
	}
	return 0
}

// IsLowFat reports whether p points into a low-fat region.
func IsLowFat(p uint64) bool {
	idx := p / RegionSize
	return idx >= 1 && idx <= uint64(NumClasses)
}

// regionAlign returns the region base of class c and the offset of the
// first size-aligned slot at or after it.
func regionAlign(c int) (regionBase, align uint64) {
	slot := classSize(c)
	regionBase = uint64(c+1) * RegionSize
	align = (slot - regionBase%slot) % slot
	return regionBase, align
}

// Options configure an Allocator.
type Options struct {
	// Quarantine delays the reuse of freed slots by holding up to this
	// many bytes across all size classes in a FIFO before they return to
	// the free lists (AddressSanitizer-style; "a technique also applicable
	// to EffectiveSan", §2.1). Zero disables quarantine.
	Quarantine uint64
}

// Stats reports allocator activity. Live and Peak count slot bytes (the
// allocator's own fragmentation included), the simulation's analogue of
// heap RSS. Stats are canonical across every Magazine drawing from the
// allocator: magazines update these counters atomically at operation
// time (never at flush time), so the totals do not depend on how many
// slots sit cached in magazines. Each counter is loaded atomically, but
// a snapshot is not a point-in-time cut across counters — cross-field
// invariants like Live == (Allocs − Frees) slot bytes and Peak ≥ Live
// hold exactly at quiescence, like core.Stats.Snapshot.
type Stats struct {
	Allocs      uint64
	Frees       uint64
	Live        uint64
	Peak        uint64
	LegacyLive  uint64
	BadFrees    uint64
	Quarantined uint64
	QuarEvicted uint64
}

// allocStats is the atomic form of Stats. Counters are plain atomic adds
// so magazines can account allocations and frees without the central
// lock; Peak is maintained with a CAS max over Live.
type allocStats struct {
	allocs      atomic.Uint64
	frees       atomic.Uint64
	live        atomic.Uint64
	peak        atomic.Uint64
	legacyLive  atomic.Uint64
	badFrees    atomic.Uint64
	quarantined atomic.Uint64
	quarEvicted atomic.Uint64
}

// countAlloc records one allocation of slot bytes: Allocs, Live and the
// monotone Peak.
func (s *allocStats) countAlloc(slot uint64) {
	s.allocs.Add(1)
	live := s.live.Add(slot)
	for {
		peak := s.peak.Load()
		if live <= peak || s.peak.CompareAndSwap(peak, live) {
			return
		}
	}
}

// countFree records one deallocation of slot bytes.
func (s *allocStats) countFree(slot uint64) {
	s.frees.Add(1)
	s.live.Add(^(slot - 1)) // atomic subtract
}

func (s *allocStats) snapshot() Stats {
	return Stats{
		Allocs:      s.allocs.Load(),
		Frees:       s.frees.Load(),
		Live:        s.live.Load(),
		Peak:        s.peak.Load(),
		LegacyLive:  s.legacyLive.Load(),
		BadFrees:    s.badFrees.Load(),
		Quarantined: s.quarantined.Load(),
		QuarEvicted: s.quarEvicted.Load(),
	}
}

// Allocator is the central low-fat heap over a simulated memory: bump
// cursors and free lists per size class, the global quarantine FIFO, and
// the canonical statistics. It is safe for concurrent use directly; for
// multicore hot paths, give each worker a Magazine (NewMagazine) so the
// central mutex is only taken on batch refills and flushes.
type Allocator struct {
	mem  *mem.Memory
	opts Options

	mu        sync.Mutex
	bump      []atomic.Uint64 // next never-used slot offset per class; written under mu, read lock-free
	freeLists [][]uint64

	// quarantine is one global FIFO over all size classes (arrival
	// order), so eviction under byte pressure releases the oldest
	// quarantined slot regardless of its class. head indexes the oldest
	// entry; the consumed prefix is compacted away periodically.
	quarantine []uint64
	quarHead   int
	quarBytes  uint64

	legacyBump atomic.Uint64
	stats      allocStats
}

// New returns an allocator over m.
func New(m *mem.Memory, opts Options) *Allocator {
	return &Allocator{
		mem:       m,
		opts:      opts,
		bump:      make([]atomic.Uint64, NumClasses),
		freeLists: make([][]uint64, NumClasses),
	}
}

// Mem returns the underlying memory.
func (a *Allocator) Mem() *mem.Memory { return a.mem }

// Stats returns a snapshot of allocator statistics. The snapshot is
// canonical even while magazines are live: their operations update these
// counters atomically as they happen. See the Stats type for the
// (quiescence-level) consistency the snapshot provides.
func (a *Allocator) Stats() Stats { return a.stats.snapshot() }

// Alloc returns a pointer to a fresh allocation of at least size bytes,
// placed in the matching size-class region and aligned to its slot size.
// The returned memory is zeroed (fresh pages read as zero; recycled slots
// are cleared here). Alloc fails only for sizes beyond the largest class.
func (a *Allocator) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	c := classFor(size)
	if c < 0 {
		return 0, fmt.Errorf("lowfat: allocation of %d bytes exceeds the largest size class", size)
	}
	slot := classSize(c)

	a.mu.Lock()
	p, ok := a.takeSlotLocked(c)
	a.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("lowfat: size class %d (slot %d) exhausted", c, slot)
	}
	a.stats.countAlloc(slot)
	a.mem.Set(p, 0, slot)
	return p, nil
}

// takeSlotLocked pops one slot of class c from the free list, or bumps a
// fresh one. It reports false when the region is exhausted. Caller holds
// a.mu and accounts statistics.
func (a *Allocator) takeSlotLocked(c int) (uint64, bool) {
	if n := len(a.freeLists[c]); n > 0 {
		p := a.freeLists[c][n-1]
		a.freeLists[c] = a.freeLists[c][:n-1]
		return p, true
	}
	return a.bumpSlotLocked(c)
}

// bumpSlotLocked carves the next never-used slot of class c, ignoring
// the free list. Caller holds a.mu.
func (a *Allocator) bumpSlotLocked(c int) (uint64, bool) {
	slot := classSize(c)
	regionBase, align := regionAlign(c)
	// Slots sit at absolute multiples of their size so that Base can
	// recover them by rounding; the first slot of a region is the first
	// such multiple at or after the region base.
	b := a.bump[c].Load()
	if align+b+slot > RegionSize {
		return 0, false
	}
	a.bump[c].Store(b + slot)
	return regionBase + align + b, true
}

// validateFree classifies p as a freeable slot base of class c, or
// counts a BadFree and returns an error. Lock-free: the bump cursor only
// grows, so a stale read can only under-approve, never over-approve a
// pointer that was genuinely allocated before the Free began.
func (a *Allocator) validateFree(p uint64) (int, error) {
	if !IsLowFat(p) || Base(p) != p {
		a.stats.badFrees.Add(1)
		return 0, fmt.Errorf("lowfat: free of non-allocation pointer %#x", p)
	}
	c := int(p/RegionSize) - 1
	regionBase, align := regionAlign(c)
	if p >= regionBase+align+a.bump[c].Load() {
		a.stats.badFrees.Add(1)
		return 0, fmt.Errorf("lowfat: free of never-allocated pointer %#x", p)
	}
	return c, nil
}

// Free returns the allocation with base pointer p to its size class. p
// must be the value previously returned by Alloc (the slot base); other
// values are rejected and counted in Stats.BadFrees.
func (a *Allocator) Free(p uint64) error {
	c, err := a.validateFree(p)
	if err != nil {
		return err
	}
	a.stats.countFree(classSize(c))
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.opts.Quarantine > 0 {
		a.quarantinePutLocked(p, c)
		return nil
	}
	a.freeLists[c] = append(a.freeLists[c], p)
	return nil
}

// quarantinePutLocked appends slot p of class c to the quarantine FIFO
// and, while the held bytes exceed the budget, releases the oldest
// quarantined slot (strict arrival order across all size classes — true
// FIFO eviction by bytes) back to its free list.
func (a *Allocator) quarantinePutLocked(p uint64, c int) {
	a.quarantine = append(a.quarantine, p)
	a.quarBytes += classSize(c)
	a.stats.quarantined.Add(1)
	for a.quarBytes > a.opts.Quarantine && a.quarHead < len(a.quarantine) {
		q := a.quarantine[a.quarHead]
		a.quarHead++
		qc := int(q/RegionSize) - 1
		a.freeLists[qc] = append(a.freeLists[qc], q)
		a.quarBytes -= classSize(qc)
		a.stats.quarEvicted.Add(1)
	}
	// Compact the consumed prefix once it dominates the backing array so
	// the FIFO's memory stays proportional to what it actually holds.
	if a.quarHead > 64 && a.quarHead*2 >= len(a.quarantine) {
		n := copy(a.quarantine, a.quarantine[a.quarHead:])
		a.quarantine = a.quarantine[:n]
		a.quarHead = 0
	}
}

// LegacyAlloc carves size bytes from the legacy region. Pointers it
// returns are not low-fat: Size reports SizeMax and Base reports 0. It
// models custom memory allocators and uninstrumented libraries (§6's
// CMA discussion), whose objects EffectiveSan cannot type. The legacy
// region is a lock-free atomic bump.
func (a *Allocator) LegacyAlloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	const align = 16
	size = (size + align - 1) / align * align
	off := a.legacyBump.Add(size) - size
	a.stats.legacyLive.Add(size)
	return LegacyBase + off
}

// refill moves up to want slots of class c from the central store into
// out under one lock acquisition. The magazine pops from the tail
// (LIFO), so out is ordered to reproduce the central heap's own hand-out
// sequence exactly: free-listed slots sit at the tail in central order
// (most recently freed popped first), and freshly bumped slots sit
// before them in descending address order (popped ascending, like the
// bump cursor) — detection shapes that depend on a neighbouring slot's
// state are therefore identical with and without magazines. The
// returned slots are uncounted (they become live when a Magazine hands
// them out) and unzeroed (Magazine zeroes on Alloc, as Alloc does).
func (a *Allocator) refill(c, want int, out []uint64) ([]uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	take := min(want, len(a.freeLists[c]))
	start := len(out)
	for i := 0; i < want-take; i++ {
		p, ok := a.bumpSlotLocked(c)
		if !ok {
			break
		}
		out = append(out, p)
	}
	// Reverse the fresh run: appended ascending, popped from the tail.
	for i, j := start, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	if take > 0 {
		n := len(a.freeLists[c])
		out = append(out, a.freeLists[c][n-take:]...)
		a.freeLists[c] = a.freeLists[c][:n-take]
	}
	if len(out) == start {
		return out, fmt.Errorf("lowfat: size class %d (slot %d) exhausted", c, classSize(c))
	}
	return out, nil
}

// flush returns magazine-cached slots of class c to the central free
// lists under one lock acquisition. Cached slots are never stale frees
// — with quarantine enabled a magazine routes every free through the
// central FIFO and its cache holds only never-handed-out refill slots —
// so they go straight back to the free lists, bypassing quarantine.
func (a *Allocator) flush(c int, slots []uint64) {
	if len(slots) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.freeLists[c] = append(a.freeLists[c], slots...)
}

// quarantineEnabled reports whether the allocator delays slot reuse.
func (a *Allocator) quarantineEnabled() bool { return a.opts.Quarantine > 0 }

// EpochTick returns a counter that advances whenever the quarantine FIFO
// evicts slots under byte pressure — the central heap's epoch-boundary
// signal for the EffectiveSan runtime's deferred-check mode: a slot
// leaving quarantine is about to be reused, so pending evidence should
// be validated first.
func (a *Allocator) EpochTick() uint64 { return a.stats.quarEvicted.Load() }
