package lowfat

import "repro/internal/mem"

// This file implements slot-padding canaries for the EffectiveSan
// runtime's epoch-checking mode (DoubleTake-style evidence). Every
// low-fat slot is zeroed when handed out, and legal accesses are
// confined to the header + requested bytes, so the slack between the
// requested size and the slot size is an implicit canary: it must still
// read as zero when the object is freed. A nonzero byte there is
// evidence that an out-of-bounds write crossed the object's end.
//
// The canary value is deliberately zero (an assertion over the existing
// alloc-time zeroing, not a magic pattern): the differential oracle
// demands byte-identical memory across precise and epoch configurations,
// and out-of-bounds reads really do load padding bytes into program
// values — a nonzero pattern would leak into computation and break that
// contract.

// CanaryMax bounds the padding span inspected per slot, keeping the
// per-free cost O(1) even for size classes with large slack.
const CanaryMax = 32

// CanarySpan returns the number of canary bytes for a slot at base
// holding usable bytes (header + requested size): the padding between
// usable and the slot size, capped at CanaryMax. Zero for legacy
// pointers and exactly-full slots.
func CanarySpan(base, usable uint64) uint64 {
	slot := Size(base)
	if slot == SizeMax || usable >= slot {
		return 0
	}
	pad := slot - usable
	if pad > CanaryMax {
		pad = CanaryMax
	}
	return pad
}

// WriteCanary (re)establishes the canary after an allocation: the span
// is forced to zero. Alloc already zeroes the whole slot, so this is an
// idempotent re-assertion, kept explicit so the epoch mode's write/check
// pairing is visible at the call sites.
func WriteCanary(m *mem.Memory, base, usable uint64) {
	if n := CanarySpan(base, usable); n > 0 {
		m.Set(base+usable, 0, n)
	}
}

// CheckCanary reports whether the canary span of the slot at base is
// intact (all zero). Callers count clobbers; a torn canary is evidence
// of an out-of-bounds write past the object's end.
func CheckCanary(m *mem.Memory, base, usable uint64) bool {
	n := CanarySpan(base, usable)
	if n == 0 {
		return true
	}
	var buf [CanaryMax]byte
	m.ReadBytes(base+usable, buf[:n])
	for _, b := range buf[:n] {
		if b != 0 {
			return false
		}
	}
	return true
}
