package lowfat

import (
	"fmt"

	"repro/internal/mem"
)

// This file is the per-worker half of the two-layer heap: a Magazine
// caches batches of slots per size class so a worker's steady-state
// Alloc/Free touches no shared lock. The central Allocator's mutex is
// taken once per refill/flush batch; statistics stay canonical because
// magazines account every operation atomically on the central counters
// at the moment it happens (never at flush time). Quarantined frees are
// routed straight to the central FIFO so temporal-error detection
// (double-free, use-after-free through the FREE type) behaves exactly as
// in the single-heap configuration.

// magBatchBytes bounds one refill/flush batch: enough slots to amortize
// the lock for small classes without hoarding memory for big ones.
const magBatchBytes = 16 << 10

// magBatchMaxSlots caps the batch for tiny classes so one magazine never
// drains a free list too far ahead of its actual demand.
const magBatchMaxSlots = 32

// magBatch returns the refill/flush batch size (in slots) for a class.
func magBatch(slot uint64) int {
	n := int(magBatchBytes / slot)
	if n < 1 {
		return 1
	}
	if n > magBatchMaxSlots {
		return magBatchMaxSlots
	}
	return n
}

// MagazineStats reports one magazine's activity: the operations it
// served and its traffic to the central heap. Refills/Flushes count lock
// acquisitions, RefillSlots/FlushSlots the slots they moved — the
// amortization ratio Allocs/Refills is the de-serialization win.
type MagazineStats struct {
	Allocs       uint64 `json:"allocs"`
	Frees        uint64 `json:"frees"`
	Refills      uint64 `json:"refills"`
	RefillSlots  uint64 `json:"refill_slots"`
	Flushes      uint64 `json:"flushes"`
	FlushSlots   uint64 `json:"flush_slots"`
	CentralFrees uint64 `json:"central_frees"` // frees routed to the central quarantine
}

// Magazine is a per-worker cache over a central Allocator. It is NOT
// safe for concurrent use — each worker goroutine owns exactly one — but
// any number of magazines may share one central Allocator. Size/Base
// arithmetic, slot placement and the canonical Stats are identical to
// allocating from the central heap directly.
type Magazine struct {
	central *Allocator
	cache   [][]uint64 // per class; popped from the tail (LIFO, cache-warm)
	stats   MagazineStats
}

// NewMagazine returns an empty magazine over the central allocator.
func (a *Allocator) NewMagazine() *Magazine {
	return &Magazine{central: a, cache: make([][]uint64, NumClasses)}
}

// Central returns the central allocator the magazine draws from.
func (m *Magazine) Central() *Allocator { return m.central }

// Stats returns the magazine's local activity counters. Canonical heap
// totals live on the central Allocator's Stats.
func (m *Magazine) Stats() MagazineStats { return m.stats }

// Alloc returns a zeroed allocation of at least size bytes, drawing from
// the magazine's local cache and refilling a batch from the central heap
// only when the cache for the size class is empty.
func (m *Magazine) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	c := classFor(size)
	if c < 0 {
		return 0, fmt.Errorf("lowfat: allocation of %d bytes exceeds the largest size class", size)
	}
	slot := classSize(c)
	if len(m.cache[c]) == 0 {
		want := magBatch(slot)
		got, err := m.central.refill(c, want, m.cache[c])
		if err != nil {
			return 0, err
		}
		m.cache[c] = got
		m.stats.Refills++
		m.stats.RefillSlots += uint64(len(got))
	}
	n := len(m.cache[c])
	p := m.cache[c][n-1]
	m.cache[c] = m.cache[c][:n-1]
	m.stats.Allocs++
	m.central.stats.countAlloc(slot)
	m.central.mem.Set(p, 0, slot)
	return p, nil
}

// Free returns the allocation with base pointer p to the magazine's
// local cache, flushing half the cache to the central heap when the
// class's cache overfills. When quarantine is enabled the free is routed
// to the central FIFO instead (reuse delay is a global, ordered
// property), so temporal detection matches the magazine-free heap.
func (m *Magazine) Free(p uint64) error {
	if m.central.quarantineEnabled() {
		if err := m.central.Free(p); err != nil {
			return err
		}
		m.stats.Frees++
		m.stats.CentralFrees++
		return nil
	}
	c, err := m.central.validateFree(p)
	if err != nil {
		return err
	}
	slot := classSize(c)
	m.stats.Frees++
	m.central.stats.countFree(slot)
	m.cache[c] = append(m.cache[c], p)
	if batch := magBatch(slot); len(m.cache[c]) >= 2*batch {
		// Flush the oldest half; the tail stays for reuse locality.
		m.flushClass(c, batch)
	}
	return nil
}

// flushClass returns the oldest n cached slots of class c to the central
// heap.
func (m *Magazine) flushClass(c, n int) {
	if n > len(m.cache[c]) {
		n = len(m.cache[c])
	}
	if n == 0 {
		return
	}
	m.central.flush(c, m.cache[c][:n])
	rest := copy(m.cache[c], m.cache[c][n:])
	m.cache[c] = m.cache[c][:rest]
	m.stats.Flushes++
	m.stats.FlushSlots += uint64(n)
}

// Flush returns every cached slot to the central heap. Call it when the
// owning worker retires so other magazines can reuse the slots; the
// magazine remains usable afterwards.
func (m *Magazine) Flush() {
	for c := range m.cache {
		m.flushClass(c, len(m.cache[c]))
	}
}

// LegacyAlloc carves from the legacy region. The legacy bump is already
// a lock-free atomic on the central heap, so there is nothing to cache.
func (m *Magazine) LegacyAlloc(size uint64) uint64 {
	return m.central.LegacyAlloc(size)
}

// EpochTick layers the magazine's own flush count onto the central
// heap's quarantine tick, so both a magazine flush and a central
// quarantine eviction are epoch boundaries for the owning worker's
// deferred-check log.
func (m *Magazine) EpochTick() uint64 {
	return m.central.EpochTick() + m.stats.Flushes
}

// Mem returns the underlying memory.
func (m *Magazine) Mem() *mem.Memory { return m.central.mem }
