package lowfat

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mem"
)

func TestMagazineAllocFreeBasics(t *testing.T) {
	a := newAlloc(t, Options{})
	m := a.NewMagazine()
	p, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if Size(p) != 64 || Base(p) != p {
		t.Fatalf("magazine slot %#x: Size=%d Base=%#x", p, Size(p), Base(p))
	}
	a.Mem().Store(p, 8, 0xdeadbeef)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	q, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("magazine must recycle locally: got %#x, want %#x", q, p)
	}
	if got := a.Mem().Load(q, 8); got != 0 {
		t.Fatalf("recycled magazine slot not zeroed: %#x", got)
	}
}

// TestMagazineStatsCanonical pins the accounting contract: magazines
// update the central Stats atomically at operation time, so Allocs,
// Frees and Live are exact while slots still sit cached in magazines,
// and the per-magazine counters sum to the central totals.
func TestMagazineStatsCanonical(t *testing.T) {
	a := newAlloc(t, Options{})
	m1, m2 := a.NewMagazine(), a.NewMagazine()
	var ptrs []uint64
	for i := 0; i < 10; i++ {
		p, err := m1.Alloc(32)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs[:4] {
		if err := m2.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	s := a.Stats()
	if s.Allocs != 10 || s.Frees != 4 {
		t.Fatalf("Allocs/Frees = %d/%d, want 10/4", s.Allocs, s.Frees)
	}
	if s.Live != 6*32 {
		t.Fatalf("Live = %d, want %d (slots cached in magazines stay counted)", s.Live, 6*32)
	}
	if s.Peak != 10*32 {
		t.Fatalf("Peak = %d, want %d", s.Peak, 10*32)
	}
	if got := m1.Stats().Allocs + m2.Stats().Allocs; got != s.Allocs {
		t.Fatalf("per-magazine Allocs sum %d != central %d", got, s.Allocs)
	}
	if got := m1.Stats().Frees + m2.Stats().Frees; got != s.Frees {
		t.Fatalf("per-magazine Frees sum %d != central %d", got, s.Frees)
	}
}

// TestMagazineRefillAmortization pins the point of the design: the
// central lock is taken once per batch, so refills are far rarer than
// allocations for small classes.
func TestMagazineRefillAmortization(t *testing.T) {
	a := newAlloc(t, Options{})
	m := a.NewMagazine()
	const n = 1000
	for i := 0; i < n; i++ {
		p, err := m.Alloc(16)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Allocs != n || st.Frees != n {
		t.Fatalf("magazine Allocs/Frees = %d/%d, want %d/%d", st.Allocs, st.Frees, n, n)
	}
	// One refill fills the class cache; the tight alloc/free loop then
	// ping-pongs on it. A handful of flush round-trips is fine; one lock
	// per operation (n of them) is what the magazine exists to avoid.
	if trips := st.Refills + st.Flushes; trips > n/50 {
		t.Fatalf("central trips = %d for %d allocs; amortization broken", trips, n)
	}
}

// TestMagazineFreshOrderMatchesCentral pins detection-shape parity: a
// magazine hands out fresh slots in ascending address order, exactly
// like the central bump cursor, so overflow-into-neighbour error
// buckets cannot depend on whether a magazine was in the path.
func TestMagazineFreshOrderMatchesCentral(t *testing.T) {
	a := newAlloc(t, Options{})
	b := newAlloc(t, Options{})
	m := b.NewMagazine()
	for i := 0; i < 50; i++ {
		want, err := a.Alloc(48)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Alloc(48)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("alloc %d: magazine %#x, central %#x", i, got, want)
		}
	}
}

// TestMagazineFlush returns cached slots to the central free lists so
// other magazines (and direct allocation) can reuse them.
func TestMagazineFlush(t *testing.T) {
	a := newAlloc(t, Options{})
	m := a.NewMagazine()
	p, _ := m.Alloc(128)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	q, err := a.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("central heap must reuse flushed slot: got %#x, want %#x", q, p)
	}
}

// TestMagazineBadFrees pins free-validation parity with the central
// heap: interior, legacy and never-allocated pointers are rejected and
// counted in the shared BadFrees.
func TestMagazineBadFrees(t *testing.T) {
	a := newAlloc(t, Options{})
	m := a.NewMagazine()
	p, _ := m.Alloc(64)
	if err := m.Free(p + 8); err == nil {
		t.Fatal("interior free through magazine must fail")
	}
	if err := m.Free(LegacyBase + 100); err == nil {
		t.Fatal("legacy free through magazine must fail")
	}
	if err := m.Free(p + RegionSize); err == nil {
		t.Fatal("free in another class's region must fail")
	}
	if got := a.Stats().BadFrees; got != 3 {
		t.Fatalf("BadFrees = %d, want 3", got)
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
}

// TestMagazineQuarantineRoutesCentral pins the temporal-detection
// contract: with quarantine enabled, magazine frees drain through the
// central FIFO — reuse is delayed exactly as without magazines.
func TestMagazineQuarantineRoutesCentral(t *testing.T) {
	a := newAlloc(t, Options{Quarantine: 1 << 20})
	m := a.NewMagazine()
	p, _ := m.Alloc(64)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().CentralFrees; got != 1 {
		t.Fatalf("CentralFrees = %d, want 1", got)
	}
	q, _ := m.Alloc(64)
	if q == p {
		t.Fatal("quarantine must delay reuse through magazines too")
	}
	if a.Stats().Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", a.Stats().Quarantined)
	}
}

// TestMagazineStress is the -race allocator stress: many goroutines,
// one magazine each, hammering Alloc/Free/LegacyAlloc over one central
// heap while a sampler thread asserts the canonical invariants — Live
// equals allocated-minus-freed slot bytes, and Peak is monotone and
// never below Live.
func TestMagazineStress(t *testing.T) {
	a := New(mem.New(), Options{})
	const (
		workers = 8
		iters   = 400
	)
	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		slotsOut atomic.Int64 // net slot bytes handed out, tracked by the workers
	)

	// Sampler: Peak must be monotone while workers run. (Peak >= Live is
	// only checked against the max Live observed, at quiescence: inside
	// countAlloc there is a benign window between the Live add and the
	// Peak CAS where a concurrent snapshot can see Live ahead of Peak.)
	samplerDone := make(chan struct{})
	var maxLiveSeen uint64
	go func() {
		defer close(samplerDone)
		var lastPeak uint64
		for !stop.Load() {
			s := a.Stats()
			if s.Peak < lastPeak {
				t.Errorf("Peak decreased: %d -> %d", lastPeak, s.Peak)
				return
			}
			lastPeak = s.Peak
			if s.Live > maxLiveSeen {
				maxLiveSeen = s.Live
			}
		}
	}()

	sizes := []uint64{16, 24, 64, 200, 1024, 5000, 70000}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := a.NewMagazine()
			var held []uint64
			for i := 0; i < iters; i++ {
				size := sizes[(i+w)%len(sizes)]
				p, err := m.Alloc(size)
				if err != nil {
					t.Error(err)
					return
				}
				slotsOut.Add(int64(Size(p)))
				held = append(held, p)
				m.LegacyAlloc(32)
				if len(held) > 8 {
					q := held[0]
					held = held[1:]
					slotsOut.Add(-int64(Size(q)))
					if err := m.Free(q); err != nil {
						t.Error(err)
						return
					}
				}
			}
			for _, q := range held {
				slotsOut.Add(-int64(Size(q)))
				if err := m.Free(q); err != nil {
					t.Error(err)
					return
				}
			}
			m.Flush()
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	<-samplerDone

	s := a.Stats()
	if want := uint64(workers * iters); s.Allocs != want || s.Frees != want {
		t.Fatalf("Allocs/Frees = %d/%d, want %d/%d", s.Allocs, s.Frees, want, want)
	}
	if s.Live != 0 || slotsOut.Load() != 0 {
		t.Fatalf("Live = %d (tracked %d), want 0 after all frees", s.Live, slotsOut.Load())
	}
	if want := uint64(workers * iters * 32); s.LegacyLive != want {
		t.Fatalf("LegacyLive = %d, want %d", s.LegacyLive, want)
	}
	if s.BadFrees != 0 {
		t.Fatalf("BadFrees = %d, want 0", s.BadFrees)
	}
	// At quiescence every countAlloc's Peak CAS has completed, so Peak
	// covers every Live value any sample ever observed.
	if s.Peak < maxLiveSeen {
		t.Fatalf("Peak %d < max observed Live %d", s.Peak, maxLiveSeen)
	}
}

// TestClassForBoundaries checks classFor against a linear-scan oracle
// at every class edge: the class size itself, one byte below and one
// byte above, plus the absolute boundaries of the table.
func TestClassForBoundaries(t *testing.T) {
	oracle := func(size uint64) int {
		for i, s := range classSizes {
			if s >= size {
				return i
			}
		}
		return -1
	}
	check := func(size uint64) {
		t.Helper()
		if got, want := classFor(size), oracle(size); got != want {
			t.Errorf("classFor(%d) = %d, oracle %d", size, got, want)
		}
	}
	for _, s := range classSizes {
		check(s - 1)
		check(s)
		check(s + 1)
	}
	check(1)
	check(MaxAllocSize)
	check(MaxAllocSize + 1)
	check(SizeMax)
	// Every in-range answer must actually fit and be minimal.
	for _, s := range []uint64{1, 15, 16, 17, 4095, 4096, 4097, 1 << 20} {
		c := classFor(s)
		if c < 0 || classSizes[c] < s {
			t.Fatalf("classFor(%d) = %d: class too small", s, c)
		}
		if c > 0 && classSizes[c-1] >= s {
			t.Fatalf("classFor(%d) = %d: not the smallest fitting class", s, c)
		}
	}
}

// TestQuarantineGlobalFIFO pins the satellite fix: under byte pressure
// the quarantine releases slots in strict arrival order across size
// classes — not "first non-empty class wins". The old per-class walk
// would release small1 here (the lowest non-empty class index) and keep
// big1, the oldest arrival.
func TestQuarantineGlobalFIFO(t *testing.T) {
	a := newAlloc(t, Options{Quarantine: 300})
	small1, _ := a.Alloc(64)
	big1, _ := a.Alloc(256)
	small2, _ := a.Alloc(64)
	big2, _ := a.Alloc(256)

	mustFree := func(p uint64) {
		t.Helper()
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	mustFree(big1)   // arrival 1: 256 held
	mustFree(small1) // arrival 2: 320 > 300 -> big1 drains (oldest), 64 held
	mustFree(small2) // arrival 3: 128 held
	mustFree(big2)   // arrival 4: 384 > 300 -> small1 then small2 drain, 256 held

	// Released, in arrival order: big1, small1, small2. Still held: big2.
	if got, _ := a.Alloc(256); got != big1 {
		t.Fatalf("eviction order: 256-class alloc got %#x, want oldest-freed %#x", got, big1)
	}
	if got, _ := a.Alloc(256); got == big2 {
		t.Fatal("big2 (newest arrival) must still be quarantined")
	}
	p1, _ := a.Alloc(64)
	p2, _ := a.Alloc(64)
	if !(p1 == small2 && p2 == small1) {
		t.Fatalf("both drained 64-byte slots must be reusable: got %#x,%#x want %#x,%#x",
			p1, p2, small2, small1)
	}
}

// BenchmarkAllocFree compares the two allocation routes under
// parallelism: every goroutine hammering the central heap's mutex
// versus each owning a magazine. The magazine series is the Fig. 10
// alloc-heavy row's microbenchmark counterpart.
func BenchmarkAllocFree(b *testing.B) {
	sizes := []uint64{16, 64, 1024}
	b.Run("central", func(b *testing.B) {
		a := New(mem.New(), Options{})
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				p, err := a.Alloc(sizes[i%len(sizes)])
				if err != nil {
					b.Error(err)
					return
				}
				if err := a.Free(p); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})
	b.Run("magazine", func(b *testing.B) {
		a := New(mem.New(), Options{})
		b.RunParallel(func(pb *testing.PB) {
			m := a.NewMagazine()
			defer m.Flush()
			i := 0
			for pb.Next() {
				p, err := m.Alloc(sizes[i%len(sizes)])
				if err != nil {
					b.Error(err)
					return
				}
				if err := m.Free(p); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})
}
