package harness

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/sanitizers"
	"repro/internal/spec"
)

// This file renders the layout-memory experiment (cmd/effbench
// -experiment layoutmem): the type-explosion workload (thousands of
// distinct struct shapes, spec.TypeExplosionN) run under a sweep of
// layout-cache capacities. It prices the §5 layout-table metadata at
// scale — structural interning collapsing isomorphic shapes, the
// bounded cache trading resident bytes for rebuild work — where the
// Fig. 8 workloads keep the type population too small for the
// metadata to matter. The JSON lands in BENCH_layoutmem.json.

// LayoutMemRow is one capacity point of the layout-memory sweep.
type LayoutMemRow struct {
	Config string `json:"config"`
	// Cap is the layout-cache capacity of the point (0 = unbounded).
	Cap         int     `json:"cap"`
	WallSeconds float64 `json:"wall_seconds"`
	// Checks is identical across capacities (detection parity); the
	// per-second rate prices the rebuild work a small cap forces.
	Checks       uint64  `json:"checks"`
	ChecksPerSec float64 `json:"checks_per_sec"`
	// TablesBuilt counts constructions (misses, including rebuilds
	// after eviction); TablesInterned of those reused a pooled
	// structural core; TablesEvicted counts capacity evictions.
	TablesBuilt    uint64 `json:"tables_built"`
	TablesInterned uint64 `json:"tables_interned"`
	TablesEvicted  uint64 `json:"tables_evicted"`
	// ResidentBytes is the modelled end-of-run layout-metadata
	// footprint (pooled cores charged once plus per-identity wrappers).
	ResidentBytes int64 `json:"resident_bytes"`
	// InternHitRate is TablesInterned/TablesBuilt: the fraction of
	// constructions that found their structural core already pooled.
	InternHitRate float64 `json:"intern_hit_rate"`
	// RebuildRate is the fraction of this point's builds that exist
	// only because eviction threw the table away first —
	// (built - built_uncapped) / built, zero for the uncapped point.
	RebuildRate float64 `json:"rebuild_rate"`
	Issues      int     `json:"issues"`
}

// LayoutMem runs the type-explosion workload (population n) once per
// layout-cache capacity and renders the sweep. caps defaults to
// {0 (unbounded), 4096, 256}; n defaults to 2048 shapes.
func LayoutMem(w io.Writer, caps []int, n int) ([]LayoutMemRow, error) {
	if len(caps) == 0 {
		caps = []int{0, 4096, 256}
	}
	if n <= 0 {
		n = 2048
	}
	b := spec.TypeExplosionN(n)
	prog, err := b.Program()
	if err != nil {
		return nil, err
	}

	var rows []LayoutMemRow
	uncappedBuilt := uint64(0)
	for _, cap := range caps {
		tool := sanitizers.ToolEffectiveSan.Counting().WithLayoutCacheCap(cap)
		if cap == 0 {
			tool = tool.Named("EffectiveSan-uncapped")
		} else {
			tool = tool.Named(fmt.Sprintf("EffectiveSan-cap%d", cap))
		}
		res, err := tool.Exec(prog, b.Entry, io.Discard)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", b.Name, tool.Name, err)
		}
		row := LayoutMemRow{
			Config:         tool.Name,
			Cap:            cap,
			WallSeconds:    res.Elapsed.Seconds(),
			Checks:         res.Stats.TypeChecks + res.Stats.BoundsChecks,
			TablesBuilt:    res.Stats.LayoutTablesBuilt,
			TablesInterned: res.Stats.LayoutTablesInterned,
			TablesEvicted:  res.Stats.LayoutTablesEvicted,
			ResidentBytes:  res.Stats.LayoutResidentBytes(),
			InternHitRate:  res.Stats.LayoutInternRate(),
			Issues:         res.Reporter.NumIssues(),
		}
		if row.WallSeconds > 0 {
			row.ChecksPerSec = float64(row.Checks) / row.WallSeconds
		}
		if cap == 0 {
			uncappedBuilt = row.TablesBuilt
		} else if uncappedBuilt > 0 && row.TablesBuilt > uncappedBuilt {
			row.RebuildRate = float64(row.TablesBuilt-uncappedBuilt) /
				float64(row.TablesBuilt)
		}
		rows = append(rows, row)
	}

	fmt.Fprintf(w, "Layout memory: %s, %d shapes, layout-cache capacity sweep (GOMAXPROCS=%d)\n",
		b.Name, n, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-24s %8s %10s %12s %8s %8s %8s %12s %8s %8s\n",
		"Config", "cap", "wall-s", "checks/s", "built", "intern", "evict",
		"resident-B", "hit%", "rebuild%")
	for _, r := range rows {
		cap := fmt.Sprintf("%d", r.Cap)
		if r.Cap == 0 {
			cap = "inf"
		}
		fmt.Fprintf(w, "%-24s %8s %10.4f %12.0f %8d %8d %8d %12d %7.1f%% %7.1f%%\n",
			r.Config, cap, r.WallSeconds, r.ChecksPerSec, r.TablesBuilt,
			r.TablesInterned, r.TablesEvicted, r.ResidentBytes,
			100*r.InternHitRate, 100*r.RebuildRate)
	}
	fmt.Fprintln(w, "(resident-B is the modelled layout-metadata footprint at end of run: pooled")
	fmt.Fprintln(w, " structural cores charged once plus per-identity wrapper overhead. hit% is")
	fmt.Fprintln(w, " the fraction of table builds that reused a pooled core; rebuild% is the")
	fmt.Fprintln(w, " fraction of builds forced by eviction, relative to the uncapped point.")
	fmt.Fprintln(w, " Detection is identical across the sweep — capacity trades resident bytes")
	fmt.Fprintln(w, " against rebuild work, which shows up in wall-s, never in the reports)")
	return rows, nil
}
