package harness

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/mir"
	"repro/internal/sanitizers"
	"repro/internal/spec"
)

// This file renders the sharded multi-threaded SPEC series — the
// scalability companion to the browser bars of Fig. 10 (§6.1/§6.3). The
// paper only exercises concurrency through Firefox; here the SPEC
// workloads themselves are run by a worker pool (sanitizers.ExecSharded)
// so throughput and per-check cost can be measured against goroutine
// count, with the per-site inline caches on and off. The JSON shape is
// committed as BENCH_fig10.json by cmd/effbench -json-fig10.

// Fig10ScalingRow is one point on the scalability curve: one
// configuration at one thread count, aggregated over the workload
// subset.
type Fig10ScalingRow struct {
	Config  string `json:"config"`
	Threads int    `json:"threads"`
	Jobs    int    `json:"jobs"` // total jobs across all workloads
	// WallSeconds sums each workload's pool wall-clock time (workloads
	// run one after another; only jobs within a workload are sharded).
	WallSeconds float64 `json:"wall_seconds"`
	// BusySeconds sums the workers' busy time — the CPU-time analogue.
	BusySeconds  float64 `json:"busy_seconds"`
	Checks       uint64  `json:"checks"` // dynamic type + bounds checks
	JobsPerSec   float64 `json:"jobs_per_sec"`
	ChecksPerSec float64 `json:"checks_per_sec"`
	// CheckNs is busy nanoseconds per dynamic check — the contended
	// per-check cost (flat across thread counts = perfect scaling).
	CheckNs float64 `json:"check_ns"`
	// Speedup is wall-clock relative to the same configuration at the
	// first (lowest) thread count of the curve.
	Speedup       float64 `json:"speedup"`
	InlineHitRate float64 `json:"inline_hit_rate"`
	SharedHitRate float64 `json:"shared_hit_rate"`
}

// Fig10ScalingWorkloads is the default SPEC subset for the curve: the
// two pointer-heaviest C workloads, the C++ workload with the richest
// type population, and a small cache-friendly one.
func Fig10ScalingWorkloads() []string {
	return []string{"perlbench", "gcc", "xalancbmk", "mcf"}
}

// ThreadCurve returns the thread counts measured for a curve topping out
// at max: the powers of two up to max, plus max itself (so -threads 12
// measures 1, 2, 4, 8, 12).
func ThreadCurve(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for n := 1; n <= max; n <<= 1 {
		out = append(out, n)
	}
	if last := out[len(out)-1]; last != max {
		out = append(out, max)
	}
	return out
}

// fig10ScalingConfigs returns the two curve configurations: full
// EffectiveSan and the no-inline-cache ablation, both in counting mode
// like every performance run. Under contention the per-site inline
// caches are the interesting knob — a hit avoids the shared memo table
// entirely, so the gap between the two curves is the contention the
// inline level absorbs.
func fig10ScalingConfigs() []*sanitizers.Tool {
	return []*sanitizers.Tool{
		sanitizers.ToolEffectiveSan.Counting(),
		sanitizers.ToolEffectiveSan.Counting().WithoutInlineCache().Named("EffectiveSan-noinline"),
	}
}

// Fig10Scaling measures the sharded SPEC harness at each thread count
// and renders the scalability curve. threadCounts defaults to
// ThreadCurve(16), jobsPerWorkload to 16 (kept divisible by every
// power-of-two thread count so partitions stay even), workloads to
// Fig10ScalingWorkloads.
func Fig10Scaling(w io.Writer, threadCounts []int, jobsPerWorkload int, workloads []string) ([]Fig10ScalingRow, error) {
	if len(threadCounts) == 0 {
		threadCounts = ThreadCurve(16)
	}
	if jobsPerWorkload <= 0 {
		jobsPerWorkload = 16
	}
	if len(workloads) == 0 {
		workloads = Fig10ScalingWorkloads()
	}

	type prepared struct {
		name  string
		prog  *mir.Program
		entry string
	}
	// Compile each workload once; ExecSharded instruments a copy and
	// never mutates the program, so every scaling point reuses it.
	var progs []prepared
	for _, n := range workloads {
		b := spec.ByName(n)
		if b == nil {
			return nil, fmt.Errorf("fig10 scaling: unknown workload %q", n)
		}
		p, err := b.Program()
		if err != nil {
			return nil, err
		}
		progs = append(progs, prepared{b.Name, p, b.Entry})
	}

	var rows []Fig10ScalingRow
	for _, tool := range fig10ScalingConfigs() {
		base := -1.0 // wall seconds at the curve's first thread count
		for _, threads := range threadCounts {
			row := Fig10ScalingRow{Config: tool.Name, Threads: threads}
			var agg core.StatsSnapshot // raw counters across workloads
			for _, p := range progs {
				res, err := tool.ExecSharded(p.prog, p.entry, jobsPerWorkload, threads, io.Discard)
				if err != nil {
					return nil, fmt.Errorf("%s/%s x%d: %w", p.name, tool.Name, threads, err)
				}
				row.Jobs += res.Jobs
				row.WallSeconds += res.Wall.Seconds()
				row.BusySeconds += res.TotalBusy().Seconds()
				agg = agg.Add(res.Stats)
			}
			row.Checks = agg.TypeChecks + agg.BoundsChecks
			row.InlineHitRate = agg.InlineCacheHitRate()
			row.SharedHitRate = agg.CheckCacheHitRate()
			if row.WallSeconds > 0 {
				row.JobsPerSec = float64(row.Jobs) / row.WallSeconds
				row.ChecksPerSec = float64(row.Checks) / row.WallSeconds
			}
			if row.Checks > 0 {
				row.CheckNs = row.BusySeconds * 1e9 / float64(row.Checks)
			}
			if base < 0 {
				base = row.WallSeconds
			}
			if row.WallSeconds > 0 {
				row.Speedup = base / row.WallSeconds
			}
			rows = append(rows, row)
		}
	}

	fmt.Fprintf(w, "Figure 10 (scaling): sharded SPEC harness, shared runtime, N worker goroutines (GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-22s %8s %8s %10s %12s %10s %9s %8s\n",
		"Config", "threads", "jobs", "wall-s", "checks/s", "check-ns", "speedup", "inline%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %8d %8d %10.4f %12.0f %10.1f %8.2fx %7.1f%%\n",
			r.Config, r.Threads, r.Jobs, r.WallSeconds, r.ChecksPerSec,
			r.CheckNs, r.Speedup, r.InlineHitRate*100)
	}
	fmt.Fprintln(w, "(speedup is wall-clock vs the same config at the curve's lowest thread count")
	fmt.Fprintln(w, " and is bounded by GOMAXPROCS — on a single-core box the curve is flat by")
	fmt.Fprintln(w, " construction and only detection parity and counter consistency are exercised;")
	fmt.Fprintln(w, " the inline-cache column shows the per-site level absorbing shared-cache traffic)")
	return rows, nil
}
