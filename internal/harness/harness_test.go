package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/bugsuite"
)

// TestFig1Shape asserts the capability matrix reproduces the paper's
// verdicts row by row.
func TestFig1Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][3]string{ // Types, Bounds, UAF
		"CaVer":            {"Partial", "✗", "✗"},
		"TypeSan":          {"Partial", "✗", "✗"},
		"UBSan":            {"Partial", "✗", "✗"},
		"HexType":          {"Partial", "✗", "✗"},
		"libcrunch":        {"Partial", "✗", "✗"},
		"BaggyBounds":      {"✗", "Partial", "✗"},
		"LowFat":           {"✗", "Partial", "✗"},
		"Intel MPX":        {"✗", "✓", "✗"},
		"SoftBound":        {"✗", "✓", "✗"},
		"CETS":             {"✗", "✗", "✓"},
		"AddressSanitizer": {"✗", "Partial", "Partial"},
		"SoftBound+CETS":   {"✗", "✓", "✓"},
		"EffectiveSan":     {"✓", "✓", "Partial"},
	}
	if len(rows) != len(want) {
		t.Fatalf("matrix has %d rows, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		w, ok := want[row.Tool]
		if !ok {
			t.Errorf("unexpected tool %q", row.Tool)
			continue
		}
		got := [3]string{
			row.Columns[bugsuite.TypeConfusion].Verdict(),
			row.Columns[bugsuite.BoundsOverflow].Verdict(),
			row.Columns[bugsuite.Temporal].Verdict(),
		}
		if got != w {
			t.Errorf("%s: %v, want %v (paper Fig. 1)", row.Tool, got, w)
		}
	}
	if !strings.Contains(buf.String(), "EffectiveSan") {
		t.Error("rendered table incomplete")
	}
}

// TestFig7Shape asserts the issue column matches the paper exactly and
// check counters are live.
func TestFig7Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig7(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("%d rows, want 19", len(rows))
	}
	for _, r := range rows {
		if r.Issues != r.PaperIssues {
			t.Errorf("%s: issues %d, want %d", r.Name, r.Issues, r.PaperIssues)
		}
		if r.TypeChecks == 0 || r.BoundsChecks == 0 {
			t.Errorf("%s: dead counters %+v", r.Name, r)
		}
	}
}

// TestFig8Ordering asserts the Fig. 8 cost ordering:
// full > bounds > type > uninstrumented (geomean).
func TestFig8Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	var buf bytes.Buffer
	rows, err := Fig8(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every bar must be present with positive timings, on the 19 SPEC
	// rows and the five synthetic progen rows. The bar list comes from
	// the canonical Fig8BarNames, never hand-copied.
	wantBars := Fig8BarNames()
	if len(wantBars) != 12 {
		t.Fatalf("%d bars, want 12: %v", len(wantBars), wantBars)
	}
	if len(rows) != 24 {
		t.Fatalf("%d rows, want 24 (19 SPEC + 5 progen)", len(rows))
	}
	for _, r := range rows {
		if len(r.Seconds) != len(wantBars) {
			t.Fatalf("%s: %d bars, want %d: %v", r.Name, len(r.Seconds), len(wantBars), r.Seconds)
		}
		for _, bar := range wantBars {
			if r.Seconds[bar] <= 0 {
				t.Errorf("%s: bar %q missing or non-positive", r.Name, bar)
			}
		}
	}
	full := OverheadGeomean(rows, "EffectiveSan")
	bounds := OverheadGeomean(rows, "EffectiveSan-bounds")
	typ := OverheadGeomean(rows, "EffectiveSan-type")
	// The type variant's true overhead is near zero on these workloads,
	// so under parallel-test CPU contention it can measure slightly
	// negative; allow generous noise floors while still requiring the
	// full > bounds > type ordering to be visible.
	if !(full > bounds && bounds > typ && typ > -0.25) {
		t.Errorf("overhead ordering violated: full=%.2f bounds=%.2f type=%.2f",
			full, bounds, typ)
	}
	if full < 0.25 {
		t.Errorf("full overhead %.2f suspiciously low; instrumentation inert?", full)
	}
}

// TestFig9Overhead asserts the memory overhead is modest (the paper
// reports ~12%; the simulation must stay the same order of magnitude,
// not multiples like shadow-memory schemes).
func TestFig9Overhead(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig9(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var base, eff uint64
	for _, r := range rows {
		base += r.BaselineBytes
		eff += r.EffBytes
	}
	oh := float64(eff)/float64(base) - 1
	if oh < 0 || oh > 0.8 {
		t.Errorf("memory overhead %.2f out of plausible range [0, 0.8]", oh)
	}
}

// TestFig10Shape asserts the browser workloads run concurrently and the
// overhead exceeds parity (temporary-object effect).
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	var buf bytes.Buffer
	rows, err := Fig10(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	// Per-workload timings are noisy when the test suite itself runs in
	// parallel on few cores; the aggregate must still show overhead.
	logSum := 0.0
	for _, r := range rows {
		logSum += math.Log(r.Relative)
	}
	if geomean := math.Exp(logSum / float64(len(rows))); geomean < 1.05 {
		t.Errorf("browser geomean relative time %.2f; instrumentation overhead invisible", geomean)
	}
}

// TestToolComparison runs the §6.2 comparison on a small subset and
// checks structural expectations: every tool yields a row, and the
// metadata-heavy tools cost more than the cast checkers.
func TestToolComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	var buf bytes.Buffer
	rows, err := ToolComparison(&buf, []string{"mcf", "lbm"})
	if err != nil {
		t.Fatal(err)
	}
	oh := map[string]float64{}
	for _, r := range rows {
		oh[r.Name] = r.Overhead
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 15", len(rows))
	}
	if !(oh["SoftBound"] > oh["TypeSan"]) {
		t.Errorf("per-pointer metadata (%.2f) should cost more than cast checks (%.2f)",
			oh["SoftBound"], oh["TypeSan"])
	}
	if !strings.Contains(buf.String(), "SoftBound+CETS") {
		t.Error("rendered table incomplete")
	}
}
