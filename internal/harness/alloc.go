package harness

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/sanitizers"
	"repro/internal/spec"
)

// This file renders the allocation-bound Fig. 10 row: the alloc-heavy
// progen workload (tight malloc/free churn across mixed size classes,
// spec.AllocHeavy) run by the sharded pool with per-worker heap
// magazines on and off. The SPEC scaling curve of sharded.go is
// check-bound — its Alloc/Free volume is too small for the allocator's
// locking discipline to show — so this row is the one where the
// central-heap-vs-magazines split separates in throughput, not just in
// refill counters. The JSON lands in BENCH_fig10.json under
// "alloc_scaling" (cmd/effbench -alloc-heavy).

// AllocHeavyConfigs returns the three configurations of the alloc-heavy
// row: full EffectiveSan with per-worker magazines (the default sharded
// mode), the same tool allocating straight from the locked central heap
// (Tool.WithoutMagazines — the serialized-allocator ablation), and the
// epoch-checking mode over magazines (evidence recording plus canary
// writes on the allocation path; prices the epoch mode where allocation
// dominates).
func AllocHeavyConfigs() []*sanitizers.Tool {
	return []*sanitizers.Tool{
		sanitizers.ToolEffectiveSan.Counting().Named("EffectiveSan-magazines"),
		sanitizers.ToolEffectiveSan.Counting().WithoutMagazines().Named("EffectiveSan-nomagazines"),
		sanitizers.ToolEffectiveSan.Counting().WithEpochChecks().Named("EffectiveSan-epoch-magazines"),
	}
}

// AllocHeavyRow is one point of the alloc-heavy series. It reuses the
// Fig10ScalingRow shape (config, threads, wall/busy seconds, throughput)
// and adds the magazine traffic that explains the gap.
type AllocHeavyRow struct {
	Fig10ScalingRow
	// Allocs/Frees are the heap operations of the point (same for every
	// configuration: the workload is deterministic).
	Allocs uint64 `json:"allocs"`
	Frees  uint64 `json:"frees"`
	// AllocsPerSec is heap operations (allocs+frees) per wall second —
	// the throughput axis of the alloc-heavy row.
	AllocsPerSec float64 `json:"allocs_per_sec"`
	// Refills/Flushes count the workers' trips to the central heap
	// (zero without magazines); (Allocs+Frees)/(Refills+Flushes) is the
	// lock-amortization ratio.
	Refills uint64 `json:"refills"`
	Flushes uint64 `json:"flushes"`
}

// Fig10AllocHeavy measures the alloc-heavy workload at each thread
// count under both configurations and renders the row. threadCounts
// defaults to ThreadCurve(16), jobs to 16 (jobs per point, shared by
// the pool like the SPEC curve).
func Fig10AllocHeavy(w io.Writer, threadCounts []int, jobs int) ([]AllocHeavyRow, error) {
	if len(threadCounts) == 0 {
		threadCounts = ThreadCurve(16)
	}
	if jobs <= 0 {
		jobs = 16
	}
	b := spec.AllocHeavy()
	prog, err := b.Program()
	if err != nil {
		return nil, err
	}

	var rows []AllocHeavyRow
	for _, tool := range AllocHeavyConfigs() {
		base := -1.0
		for _, threads := range threadCounts {
			res, err := tool.ExecSharded(prog, b.Entry, jobs, threads, io.Discard)
			if err != nil {
				return nil, fmt.Errorf("%s/%s x%d: %w", b.Name, tool.Name, threads, err)
			}
			row := AllocHeavyRow{Fig10ScalingRow: Fig10ScalingRow{
				Config: tool.Name, Threads: threads, Jobs: res.Jobs,
				WallSeconds: res.Wall.Seconds(),
				BusySeconds: res.TotalBusy().Seconds(),
			}}
			row.Checks = res.Stats.TypeChecks + res.Stats.BoundsChecks
			row.InlineHitRate = res.Stats.InlineCacheHitRate()
			row.SharedHitRate = res.Stats.CheckCacheHitRate()
			row.Allocs = res.Stats.HeapAllocs + res.Stats.StackAllocs + res.Stats.GlobalAllocs
			row.Frees = res.Stats.Frees - res.Stats.LegacyFrees
			for _, ws := range res.Workers {
				row.Refills += ws.Magazine.Refills
				row.Flushes += ws.Magazine.Flushes
			}
			if row.WallSeconds > 0 {
				row.JobsPerSec = float64(row.Jobs) / row.WallSeconds
				row.ChecksPerSec = float64(row.Checks) / row.WallSeconds
				row.AllocsPerSec = float64(row.Allocs+row.Frees) / row.WallSeconds
			}
			if row.Checks > 0 {
				row.CheckNs = row.BusySeconds * 1e9 / float64(row.Checks)
			}
			if base < 0 {
				base = row.WallSeconds
			}
			if row.WallSeconds > 0 {
				row.Speedup = base / row.WallSeconds
			}
			rows = append(rows, row)
		}
	}

	fmt.Fprintf(w, "Figure 10 (alloc-heavy): %s, magazines vs central heap, N worker goroutines (GOMAXPROCS=%d)\n",
		b.Name, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-26s %8s %8s %10s %13s %9s %9s %9s\n",
		"Config", "threads", "jobs", "wall-s", "allocops/s", "refills", "flushes", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %8d %8d %10.4f %13.0f %9d %9d %8.2fx\n",
			r.Config, r.Threads, r.Jobs, r.WallSeconds, r.AllocsPerSec,
			r.Refills, r.Flushes, r.Speedup)
	}
	fmt.Fprintln(w, "(allocops/s is heap allocs+frees per wall second; refills/flushes are the")
	fmt.Fprintln(w, " workers' batched trips to the central heap — zero in the nomagazines rows,")
	fmt.Fprintln(w, " whose every operation takes the central mutex instead. Speedup is relative")
	fmt.Fprintln(w, " to the same config at the curve's lowest thread count and is bounded by")
	fmt.Fprintln(w, " GOMAXPROCS, like the SPEC scaling curve)")
	return rows, nil
}
