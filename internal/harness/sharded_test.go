package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestThreadCurve pins the -threads flag's expansion.
func TestThreadCurve(t *testing.T) {
	for _, tc := range []struct {
		max  int
		want []int
	}{
		{16, []int{1, 2, 4, 8, 16}},
		{12, []int{1, 2, 4, 8, 12}},
		{1, []int{1}},
		{0, []int{1}},
		{3, []int{1, 2, 3}},
	} {
		if got := ThreadCurve(tc.max); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ThreadCurve(%d) = %v, want %v", tc.max, got, tc.want)
		}
	}
}

// TestFig10ScalingShape runs a reduced curve (two workloads, 1 and 2
// threads, both configurations) and asserts its structural invariants.
// Wall-clock speedup is hardware-dependent (GOMAXPROCS-bounded), so the
// test checks work conservation — the same corpus executes the same
// checks at every thread count — and the knob semantics, not timings.
func TestFig10ScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	var buf bytes.Buffer
	threads := []int{1, 2}
	workloads := []string{"mcf", "lbm"}
	rows, err := Fig10Scaling(&buf, threads, 4, workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 configs x 2 thread counts
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byConfig := map[string][]Fig10ScalingRow{}
	for _, r := range rows {
		if r.Jobs != 4*len(workloads) {
			t.Errorf("%s x%d: %d jobs, want %d", r.Config, r.Threads, r.Jobs, 4*len(workloads))
		}
		if r.Checks == 0 || r.WallSeconds <= 0 || r.CheckNs <= 0 || r.ChecksPerSec <= 0 {
			t.Errorf("%s x%d: dead measurements %+v", r.Config, r.Threads, r)
		}
		byConfig[r.Config] = append(byConfig[r.Config], r)
	}
	if len(byConfig) != 2 {
		t.Fatalf("configs = %v, want EffectiveSan and EffectiveSan-noinline", byConfig)
	}
	for cfg, rs := range byConfig {
		if len(rs) != len(threads) {
			t.Fatalf("%s: %d points, want %d", cfg, len(rs), len(threads))
		}
		// Work conservation: sharding repartitions the corpus, it never
		// changes how many checks execute.
		if rs[0].Checks != rs[1].Checks {
			t.Errorf("%s: check volume varies with threads: %d vs %d",
				cfg, rs[0].Checks, rs[1].Checks)
		}
	}
	for _, r := range byConfig["EffectiveSan"] {
		if r.InlineHitRate <= 0 {
			t.Errorf("EffectiveSan x%d: inline hit rate %.3f, want > 0", r.Threads, r.InlineHitRate)
		}
	}
	for _, r := range byConfig["EffectiveSan-noinline"] {
		if r.InlineHitRate != 0 {
			t.Errorf("noinline x%d: inline hit rate %.3f, want 0", r.Threads, r.InlineHitRate)
		}
		if r.SharedHitRate <= 0 {
			t.Errorf("noinline x%d: shared hit rate %.3f, want > 0", r.Threads, r.SharedHitRate)
		}
	}
	if !strings.Contains(buf.String(), "GOMAXPROCS") {
		t.Error("rendered curve must record the machine's parallelism")
	}
}

// TestFig10AllocHeavyShape smoke-tests the allocation-bound row: both
// configurations at 1 and 2 threads, populated throughput fields, the
// magazine rows carrying central-heap traffic counters (amortized well
// below the operation count) and the nomagazines rows carrying none.
func TestFig10AllocHeavyShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig10AllocHeavy(&buf, []int{1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 3 configs x 2 thread counts", len(rows))
	}
	for _, r := range rows {
		if r.Allocs == 0 || r.Frees == 0 || r.AllocsPerSec <= 0 {
			t.Errorf("%s x%d: empty alloc profile: %+v", r.Config, r.Threads, r)
		}
		switch r.Config {
		case "EffectiveSan-magazines":
			if r.Refills == 0 || r.Flushes == 0 {
				t.Errorf("%s x%d: magazine rows must show central traffic", r.Config, r.Threads)
			}
			if trips := r.Refills + r.Flushes; trips*10 > r.Allocs+r.Frees {
				t.Errorf("%s x%d: %d central trips for %d ops; amortization missing",
					r.Config, r.Threads, trips, r.Allocs+r.Frees)
			}
		case "EffectiveSan-nomagazines":
			if r.Refills != 0 || r.Flushes != 0 {
				t.Errorf("%s x%d: nomagazines rows must not touch magazines", r.Config, r.Threads)
			}
		case "EffectiveSan-epoch-magazines":
			// Epoch mode rides the same magazine path; canary writes and
			// evidence recording must not change the allocator traffic.
			if r.Refills == 0 || r.Flushes == 0 {
				t.Errorf("%s x%d: epoch magazine rows must show central traffic", r.Config, r.Threads)
			}
		default:
			t.Errorf("unexpected config %q", r.Config)
		}
	}
	// The deterministic profile is identical across configurations.
	if rows[0].Allocs != rows[2].Allocs || rows[0].Frees != rows[2].Frees {
		t.Errorf("alloc profile differs across configs: %+v vs %+v", rows[0], rows[2])
	}
	if rows[0].Allocs != rows[4].Allocs || rows[0].Frees != rows[4].Frees {
		t.Errorf("epoch alloc profile differs: %+v vs %+v", rows[0], rows[4])
	}
	if !strings.Contains(buf.String(), "alloc-heavy") {
		t.Error("rendered table missing the alloc-heavy header")
	}
}
