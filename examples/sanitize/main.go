// Sanitizer comparison: the Fig. 1 capability matrix in miniature.
//
// A single program with three latent bugs — a bad C++ downcast, a
// sub-object overflow, and a use-after-free — is run under every modelled
// sanitizer. Each tool sees only what its mechanism covers; EffectiveSan's
// single mechanism (dynamic type checking) sees all three.
//
// Run with: go run ./examples/sanitize
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ctypes"
	"repro/internal/sanitizers"
)

const src = `
class Shape { int kind; };
class Circle : public Shape { int radius; };
class Square : public Shape { int side; };

struct Packet { int hdr; int payload[4]; int crc; };

int *stash[1];

int bad_downcast() {
    class Square *sq = new class Square;
    class Shape *s = (class Shape *)sq;
    class Circle *c = (class Circle *)s;    // sibling downcast
    return c->radius;
}

int sub_object_overflow() {
    struct Packet *p = new struct Packet;
    int *pay = p->payload;
    int acc = 0;
    for (int i = 0; i <= 4; i++) { acc += pay[i]; }   // i==4 reads crc
    free(p);
    return acc;
}

int use_after_free() {
    int *buf = malloc(32 * sizeof(int));
    stash[0] = buf;
    free(buf);
    int *d = stash[0];
    return d[0];
}

int main() {
    return bad_downcast() + sub_object_overflow() + use_after_free();
}
`

func main() {
	fmt.Printf("%-20s %-8s %-8s %-8s\n", "Sanitizer", "Types", "Bounds", "UAF")
	for _, tool := range sanitizers.All() {
		prog, err := cc.Compile(src, ctypes.NewTable())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := tool.Exec(prog, "main", io.Discard)
		if err != nil {
			fmt.Fprintln(os.Stderr, tool.Name, err)
			os.Exit(1)
		}
		kinds := res.Reporter.IssuesByKind()
		mark := func(found bool) string {
			if found {
				return "✓"
			}
			return "·"
		}
		fmt.Printf("%-20s %-8s %-8s %-8s\n", tool.Name,
			mark(kinds[core.TypeError] > 0),
			mark(kinds[core.BoundsError] > 0),
			mark(kinds[core.UseAfterFree] > 0))
	}
	fmt.Println("\n(✓ = at least one finding of that kind; · = silent)")
}
