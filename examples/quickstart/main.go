// Quickstart: using the EffectiveSan runtime API directly.
//
// This example exercises the paper's core mechanism without the compiler
// pipeline: it builds C types, allocates dynamically typed objects
// (type_malloc), and performs type_check / bounds_check operations,
// showing how one mechanism detects type confusion, sub-object
// overflows, and use-after-free.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctypes"
)

func main() {
	tb := ctypes.NewTable()
	rt := core.NewRuntime(core.Options{Types: tb})

	// The paper's Example 1 types:
	//   struct S {int a[3]; char *s;};
	//   struct T {float f; struct S t;};
	tb.MustParse("struct S { int a[3]; char *s; }")
	T := tb.MustParse("struct T { float f; struct S t; }")

	p, err := rt.New(T, core.HeapAlloc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("allocated a struct T at %#x (dynamic type bound at allocation)\n\n", p)

	// Example 5: an interior pointer to t.a[2] checked against int[]
	// succeeds and yields the int[3] sub-object bounds.
	q := p + 16 // &p->t.a[2] under x86_64 layout
	b := rt.TypeCheck(q, ctypes.Int, "quickstart")
	fmt.Printf("type_check(&p->t.a[2], int[])    -> bounds %v (the int[3] sub-object)\n", b)

	// The same pointer checked against double[] is type confusion.
	rt.TypeCheck(q, ctypes.Double, "quickstart")
	fmt.Printf("type_check(&p->t.a[2], double[]) -> %d error(s) logged\n\n", rt.Reporter.Total())

	// Sub-object bounds enforcement: walking past int[3] with the bounds
	// from the type check is caught even though the access stays inside
	// the allocation (the §1 account example in miniature).
	overflow := q + 8 // one past a[2] is a[3]: outside int[3]
	ok := rt.BoundsCheck(overflow, 4, b, "int", "quickstart")
	fmt.Printf("bounds_check(&p->t.a[3])         -> in bounds? %v\n\n", ok)

	// Use-after-free: the freed object is rebound to the FREE type, so
	// the next type check fails.
	rt.TypeFree(p, "quickstart")
	rt.TypeCheck(p, ctypes.Float, "quickstart")

	fmt.Println("error log:")
	fmt.Print(rt.Reporter.Log())

	st := rt.Stats()
	fmt.Printf("\nstats: %d type checks, %d bounds checks, %d narrows\n",
		st.TypeChecks, st.BoundsChecks, st.BoundsNarrows)

	// The type metadata also powers reflection (§5): ask the runtime what
	// lives at an arbitrary pointer.
	p2, _ := rt.New(T, core.HeapAlloc)
	fmt.Println("\nreflection (Describe):")
	fmt.Println(rt.Describe(p2 + 16))
}
