// Temporal errors through the FREE type (§3).
//
// EffectiveSan binds deallocated objects to the special FREE type,
// reducing use-after-free and double-free to type errors. Reuse-after-
// free is caught when the recycled slot holds a different type — and,
// demonstrably, missed when it holds the same type (the paper's
// documented partiality, Fig. 1 §). A quarantine delays reuse and
// converts reuse-after-free back into detectable use-after-free.
//
// Run with: go run ./examples/uaf
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cc"
	"repro/internal/ctypes"
	"repro/internal/sanitizers"
)

var cases = []struct {
	name string
	src  string
}{
	{"use-after-free", `
long *stash[1];
int main() {
    long *p = malloc(8 * sizeof(long));
    stash[0] = p;
    free(p);
    long *d = stash[0];
    return (int)d[0];
}`},
	{"double-free", `
int main() {
    long *p = malloc(8 * sizeof(long));
    free(p);
    free(p);
    return 0;
}`},
	{"reuse-after-free (different type)", `
long *stash[1];
int main() {
    long *p = malloc(8 * sizeof(long));
    stash[0] = p;
    free(p);
    double *q = malloc(8 * sizeof(double));  // recycles the slot
    q[0] = 2.5;
    long *d = stash[0];
    return (int)d[0];
}`},
	{"reuse-after-free (same type: the documented miss)", `
long *stash[1];
int main() {
    long *p = malloc(8 * sizeof(long));
    stash[0] = p;
    free(p);
    long *q = malloc(8 * sizeof(long));      // same type: undetectable
    q[0] = 9;
    long *d = stash[0];
    return (int)d[0];
}`},
}

func main() {
	for _, c := range cases {
		prog, err := cc.Compile(c.src, ctypes.NewTable())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := sanitizers.ToolEffectiveSan.Exec(prog, "main", io.Discard)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-48s ", c.name+":")
		if res.Reporter.Total() > 0 {
			fmt.Println("DETECTED")
			fmt.Print("    " + res.Reporter.Log())
		} else {
			fmt.Println("missed")
		}
	}

	// With a quarantine, the same-type reuse slot is NOT recycled
	// immediately, so the dangling use still sees FREE.
	fmt.Println("\nwith a 1 MiB quarantine (delayed reuse):")
	prog, _ := cc.Compile(cases[3].src, ctypes.NewTable())
	q := &sanitizers.Tool{Name: "EffectiveSan+quarantine",
		Variant: sanitizers.ToolEffectiveSan.Variant, Quarantine: 1 << 20}
	res, err := q.Exec(prog, "main", io.Discard)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-48s ", cases[3].name+":")
	if res.Reporter.Total() > 0 {
		fmt.Println("DETECTED")
		fmt.Print("    " + res.Reporter.Log())
	} else {
		fmt.Println("missed")
	}
}
