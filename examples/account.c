// The paper's §1 motivating example: an in-bounds-of-the-allocation
// write that overflows an interior array into a sibling field. Only
// sub-object bounds narrowing catches it:
//
//	go run ./cmd/effsan -stats examples/account.c
//	go run ./cmd/effsan -variant bounds examples/account.c   # misses it
struct account { int number[8]; float balance; };

int main() {
    struct account *a = new struct account;
    a->balance = 100.0;
    int *digits = a->number;
    for (int i = 0; i <= 8; i++) {   // i==8 lands on balance
        digits[i] = 7;
    }
    free(a);
    return 0;
}
