// Sub-object bounds detection: the paper's §1 motivating example.
//
//	struct account {int number[8]; float balance;}
//
// An overflow from number[] into balance stays inside the allocation, so
// allocation-bounds tools (AddressSanitizer, LowFat, BaggyBounds) cannot
// see it. EffectiveSan derives the int[8] sub-object bounds from the
// dynamic type at the type check and catches the overflow; its own
// bounds-only variant (allocation bounds, like LowFat) demonstrably does
// not — run and compare.
//
// Run with: go run ./examples/subobject
package main

import (
	"fmt"
	"os"

	"repro/internal/cc"
	"repro/internal/ctypes"
	"repro/internal/sanitizers"
)

const src = `
struct account { int number[8]; float balance; };

int main() {
    struct account *acct = new struct account;
    acct->balance = 1000.0;
    int *number = acct->number;
    // Writes number[0..8]: the last write lands on balance.
    for (int i = 0; i <= 8; i++) {
        number[i] = 7;
    }
    float b = acct->balance;   // 9.8e-45: the account balance is gone
    free(acct);
    return (int)b;
}
`

func main() {
	prog, err := cc.Compile(src, ctypes.NewTable())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, tool := range []*sanitizers.Tool{
		sanitizers.ToolEffectiveSan,
		sanitizers.ToolEffBounds,
		{Name: "AddressSanitizer", MakeSan: func() sanitizers.Sanitizer {
			return sanitizers.NewASan()
		}},
	} {
		// Each Exec compiles state fresh, so runs are independent.
		p, _ := cc.Compile(src, ctypes.NewTable())
		res, err := tool.Exec(p, "main", os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-22s ", tool.Name+":")
		if n := res.Reporter.NumIssues(); n > 0 {
			fmt.Printf("DETECTED (%d issue)\n", n)
			fmt.Print("    " + res.Reporter.Log())
		} else {
			fmt.Println("missed (overflow stays inside the allocation)")
		}
	}
	_ = prog
}
